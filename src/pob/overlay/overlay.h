// The Overlay abstraction the randomized algorithms sample neighbors from.
//
// A complete graph on 10^4 nodes has ~5*10^7 edges; materializing it would
// dominate memory and setup time, so CompleteOverlay answers neighbor
// queries arithmetically while GraphOverlay wraps an explicit Graph
// (random regular, hypercube-like, ring, tree).

#pragma once

#include <memory>
#include <utility>

#include "pob/core/types.h"
#include "pob/overlay/graph.h"

namespace pob {

class Overlay {
 public:
  virtual ~Overlay() = default;

  virtual std::uint32_t num_nodes() const = 0;

  virtual std::uint32_t degree(NodeId u) const = 0;

  /// The idx-th neighbor of u, 0 <= idx < degree(u). Ordering is arbitrary
  /// but stable; uniform sampling of idx yields a uniform random neighbor.
  virtual NodeId neighbor(NodeId u, std::uint32_t idx) const = 0;

  virtual bool adjacent(NodeId u, NodeId v) const = 0;

  /// Index of `v` within `u`'s neighbor ordering (neighbor(u, idx) == v), or
  /// kUnlimited when not adjacent.
  virtual std::uint32_t neighbor_index(NodeId u, NodeId v) const = 0;

  double average_degree() const;
};

/// Every pair of nodes is connected (§2.4.4's baseline overlay).
class CompleteOverlay final : public Overlay {
 public:
  explicit CompleteOverlay(std::uint32_t num_nodes) : n_(num_nodes) {}

  std::uint32_t num_nodes() const override { return n_; }
  std::uint32_t degree(NodeId) const override { return n_ - 1; }
  NodeId neighbor(NodeId u, std::uint32_t idx) const override {
    return idx < u ? idx : idx + 1;
  }
  bool adjacent(NodeId u, NodeId v) const override { return u != v; }
  std::uint32_t neighbor_index(NodeId u, NodeId v) const override {
    if (u == v) return kUnlimited;
    return v < u ? v : v - 1;
  }

 private:
  std::uint32_t n_;
};

/// Adapter over an explicit Graph.
class GraphOverlay final : public Overlay {
 public:
  /// Takes ownership; the graph must be finalized.
  explicit GraphOverlay(Graph graph);

  std::uint32_t num_nodes() const override { return graph_.num_nodes(); }
  std::uint32_t degree(NodeId u) const override { return graph_.degree(u); }
  NodeId neighbor(NodeId u, std::uint32_t idx) const override {
    return graph_.neighbors(u)[idx];
  }
  bool adjacent(NodeId u, NodeId v) const override { return graph_.has_edge(u, v); }
  std::uint32_t neighbor_index(NodeId u, NodeId v) const override;

  const Graph& graph() const { return graph_; }

 private:
  Graph graph_;
};

}  // namespace pob
