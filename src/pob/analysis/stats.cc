#include "pob/analysis/stats.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace pob {

double t_critical_975(std::size_t dof) {
  // Standard table; values beyond 30 dof are within ~1% of the normal 1.96.
  static constexpr std::array<double, 31> kTable = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179,  2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
      2.074,  2.069,  2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof == 0) return 0.0;
  if (dof < kTable.size()) return kTable[dof];
  return 1.96;
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (s.count == 0) return s;
  double sum = 0.0;
  s.min = samples[0];
  s.max = samples[0];
  for (const double x : samples) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (const double x : samples) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
    s.ci95 = t_critical_975(s.count - 1) * s.stddev /
             std::sqrt(static_cast<double>(s.count));
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = s.count / 2;
  s.median = s.count % 2 == 1 ? sorted[mid] : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

}  // namespace pob
