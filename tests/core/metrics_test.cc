#include "pob/core/metrics.h"

#include <gtest/gtest.h>

namespace pob {
namespace {

EngineConfig cfg3() {
  EngineConfig cfg;
  cfg.num_nodes = 3;  // 3 upload slots/tick at capacity 1
  cfg.num_blocks = 4;
  return cfg;
}

TEST(Metrics, UtilizationSummaryCountsFullAndBadTicks) {
  RunResult r;
  r.uploads_per_tick = {3, 3, 1, 0, 3};
  const UtilizationSummary s = summarize_utilization(r, cfg3());
  EXPECT_EQ(s.total_ticks, 5u);
  EXPECT_EQ(s.full_ticks, 3u);
  EXPECT_EQ(s.bad_ticks, 2u);  // 1/3 and 0 are below 5/6
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_NEAR(s.mean, (1.0 + 1.0 + 1.0 / 3.0 + 0.0 + 1.0) / 5.0, 1e-12);
}

TEST(Metrics, UtilizationSummaryEmptyRun) {
  const UtilizationSummary s = summarize_utilization(RunResult{}, cfg3());
  EXPECT_EQ(s.total_ticks, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Metrics, CustomBadThreshold) {
  RunResult r;
  r.uploads_per_tick = {2, 3};
  const UtilizationSummary s = summarize_utilization(r, cfg3(), 0.5);
  EXPECT_EQ(s.bad_ticks, 0u);  // 2/3 >= 0.5
}

TEST(Metrics, CompletionSpread) {
  RunResult r;
  r.completed = true;
  r.client_completion = {10, 14, 12};
  const CompletionSpread c = completion_spread(r);
  EXPECT_EQ(c.first, 10u);
  EXPECT_EQ(c.last, 14u);
  EXPECT_EQ(c.spread, 4u);
  EXPECT_DOUBLE_EQ(c.mean, 12.0);
}

TEST(Metrics, CompletionSpreadRequiresCompletedRun) {
  RunResult r;
  r.completed = false;
  EXPECT_THROW(completion_spread(r), std::invalid_argument);
}

TEST(Metrics, MeanClientGoodput) {
  RunResult r;
  r.completed = true;
  r.client_completion = {10, 20};
  // k/T_i averaged: (40/10 + 40/20) / 2 = 3.
  EXPECT_DOUBLE_EQ(mean_client_goodput(r, 40), 3.0);
  r.completed = false;
  EXPECT_DOUBLE_EQ(mean_client_goodput(r, 40), 0.0);
}

}  // namespace
}  // namespace pob
