// Trace (de)serialization and replay: save a run's full transfer schedule to
// a compact text format, reload it later, and replay it through the
// validating engine (optionally under a different mechanism — e.g. record a
// cooperative schedule and ask "would this have been legal under strict
// barter?").
//
// Format (line-oriented, '#' comments allowed before the header):
//
//   pobtrace 1 <n> <k> <upload> <download> <server_upload>
//   <from>:<to>:<block> <from>:<to>:<block> ...     # tick 1
//   ...                                             # one line per tick
//
// An empty line encodes an idle tick. `download` of 0 encodes unlimited.
//
// Version 2 adds optional '!' directive lines between the header and the
// first tick, carrying the config extensions a replay needs to reproduce a
// churn or heterogeneous run:
//
//   pobtrace 2 <n> <k> <upload> <download> <server_upload>
//   !up <n per-node upload capacities>
//   !down <n per-node download capacities, 0 = unlimited>
//   !depart <tick>:<node> <tick>:<node> ...
//   !drop                # drop_transfers_involving_inactive
//   !depart-on-complete
//
// write_trace emits version 1 when none of the extensions are present, so
// existing v1 traces and consumers are unaffected.

#pragma once

#include <iosfwd>
#include <utility>
#include <vector>

#include "pob/core/engine.h"
#include "pob/core/scheduler.h"

namespace pob {

struct LoadedTrace {
  std::uint32_t num_nodes = 0;
  std::uint32_t num_blocks = 0;
  std::uint32_t upload_capacity = 1;
  std::uint32_t download_capacity = kUnlimited;
  std::uint32_t server_upload_capacity = 0;
  // v2 extensions (empty/false in v1 traces).
  std::vector<std::uint32_t> upload_capacities;
  std::vector<std::uint32_t> download_capacities;
  std::vector<std::pair<Tick, NodeId>> departures;
  bool drop_transfers_involving_inactive = false;
  bool depart_on_complete = false;
  std::vector<std::vector<Transfer>> ticks;

  EngineConfig to_config() const;
};

/// Writes the run's trace (config.record_trace must have been set).
void write_trace(std::ostream& os, const EngineConfig& config, const RunResult& result);

/// Parses a trace; throws std::invalid_argument on malformed input.
LoadedTrace read_trace(std::istream& is);

/// Scheduler that plays back a loaded trace verbatim.
class TraceScheduler final : public Scheduler {
 public:
  explicit TraceScheduler(const LoadedTrace& trace) : trace_(&trace) {}
  std::string_view name() const override { return "trace-replay"; }
  void plan_tick(Tick tick, const SwarmState& state, std::vector<Transfer>& out) override;

 private:
  const LoadedTrace* trace_;
};

/// Replays the trace through the validating engine (throws EngineViolation
/// if it breaks the model or `mechanism`).
RunResult replay_trace(const LoadedTrace& trace, Mechanism* mechanism = nullptr);

}  // namespace pob
