#include "pob/check/stream_check.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <vector>

#include "pob/async/event_engine.h"
#include "pob/scale/stream/demand.h"

namespace pob::check {
namespace {

using scale::stream::DemandTracker;
using scale::stream::StreamEngine;
using scale::stream::StreamSpec;

// Timing tolerance for "has this queued transfer's start time arrived":
// wakeup timers are scheduled as now + (start - now), which need not round
// back to exactly `start`. Distinct legitimate event times differ by at
// least 1/rate, orders of magnitude above this.
constexpr double kTimeEps = 1e-9;

struct QueuedSend {
  Transfer tr;
  double start = 0.0;  // tick t transfer => t - 1
};

// Replays the recorded tick trace through the continuous-time engine. Each
// sender serves its queue in trace order; its rate is one more than its
// busiest tick's send count, so tick t's sends chain strictly inside
// (t-1, t) — every finish lands in the open interval, which (a) guarantees
// the sender of a tick-(t+1) transfer holds the block strictly before the
// transfer starts, and (b) makes ceil(finish) the original tick number with
// a full 1/rate margin on both sides.
class ReplayPolicy final : public AsyncPolicy {
 public:
  ReplayPolicy(std::uint32_t n, const std::vector<std::vector<Transfer>>& trace) {
    queues_.resize(n);
    next_.assign(n, 0);
    for (std::size_t t = 0; t < trace.size(); ++t) {
      for (const Transfer& tr : trace[t]) {
        queues_[tr.from].push_back({tr, static_cast<double>(t)});
      }
    }
  }

  Transfer next_upload(NodeId node, double now, const AsyncView&) override {
    if (next_[node] >= queues_[node].size()) return {};
    const QueuedSend& q = queues_[node][next_[node]];
    if (now + kTimeEps < q.start) return {};
    ++next_[node];
    return q.tr;
  }

  double retry_after(NodeId node, double now) override {
    if (next_[node] >= queues_[node].size()) return 0.0;
    return std::max(queues_[node][next_[node]].start - now, kTimeEps);
  }

 private:
  std::vector<std::vector<QueuedSend>> queues_;
  std::vector<std::size_t> next_;
};

Tick tick_of(double finish) { return static_cast<Tick>(std::ceil(finish - kTimeEps)); }

std::string fail(const char* what, double scale_v, double async_v) {
  std::ostringstream os;
  os << what << ": scale=" << scale_v << " async=" << async_v;
  return os.str();
}

bool transfer_less(const Transfer& a, const Transfer& b) {
  if (a.from != b.from) return a.from < b.from;
  if (a.to != b.to) return a.to < b.to;
  return a.block < b.block;
}

}  // namespace

StreamMirrorReport stream_mirror_check(const StreamSpec& spec, unsigned jobs) {
  StreamMirrorReport report;

  StreamSpec traced = spec;
  traced.config.record_trace = true;
  StreamEngine stream(traced);
  const std::vector<Tick> arrivals = stream.arrivals();
  report.scale = stream.run(jobs);
  const RunResult& sr = report.scale;
  const std::uint32_t n = spec.config.num_nodes;
  const Tick last_tick = sr.ticks_executed;

  // --- Replay through the event engine --------------------------------
  ReplayPolicy policy(n, sr.trace);
  AsyncConfig acfg;
  acfg.num_nodes = n;
  acfg.num_blocks = spec.config.num_blocks;
  acfg.upload_rate.assign(n, 1.0);
  for (const auto& tick : sr.trace) {
    std::vector<std::uint32_t> sends(n, 0);
    for (const Transfer& tr : tick) ++sends[tr.from];
    for (NodeId u = 0; u < n; ++u) {
      acfg.upload_rate[u] =
          std::max(acfg.upload_rate[u], static_cast<double>(sends[u] + 1));
    }
  }
  acfg.download_ports = kUnlimited;
  acfg.max_time = static_cast<double>(last_tick) + 2.0;
  acfg.record_log = true;
  AsyncResult ar = run_async(acfg, policy);

  const auto reject = [&report](std::string why) {
    report.ok = false;
    report.diagnosis = std::move(why);
    return report;
  };

  // --- Structural agreement -------------------------------------------
  if (sr.completed != ar.completed) {
    return reject(fail("completed", sr.completed ? 1 : 0, ar.completed ? 1 : 0));
  }
  if (sr.total_transfers != ar.total_transfers) {
    return reject(fail("total_transfers", static_cast<double>(sr.total_transfers),
                       static_cast<double>(ar.total_transfers)));
  }
  for (NodeId c = 1; c < n; ++c) {
    const Tick st = sr.client_completion[c - 1];
    const double at = ar.client_completion[c - 1];
    if (st == 0) {
      if (!std::isnan(at)) {
        return reject(fail(("client " + std::to_string(c) +
                            " completion (scale incomplete)").c_str(),
                           0.0, at));
      }
    } else if (std::isnan(at) || tick_of(at) != st) {
      return reject(fail(("client " + std::to_string(c) + " completion tick").c_str(),
                         static_cast<double>(st), at));
    }
  }

  // Per-tick delivery sets: bucket the async log by ceil(finish) and compare
  // each tick's multiset against the recorded trace tick.
  std::vector<std::vector<Transfer>> async_ticks(last_tick);
  for (const AsyncTransfer& at : ar.log) {
    const Tick t = tick_of(at.finish);
    if (t < 1 || t > last_tick) {
      return reject("async finish time " + std::to_string(at.finish) +
                    " maps outside the tick range");
    }
    async_ticks[t - 1].push_back(at.transfer);
  }
  for (Tick t = 1; t <= last_tick; ++t) {
    std::vector<Transfer> want = sr.trace[t - 1];
    std::vector<Transfer>& got = async_ticks[t - 1];
    std::sort(want.begin(), want.end(), transfer_less);
    std::sort(got.begin(), got.end(), transfer_less);
    if (want != got) {
      return reject("tick " + std::to_string(t) + " delivery sets differ (" +
                    std::to_string(want.size()) + " vs " + std::to_string(got.size()) +
                    " transfers)");
    }
  }

  // --- Independent streaming-metric recompute --------------------------
  // The same DemandTracker fold, fed from the async event log instead of
  // the engine's accepted stream; every metric must match bit-for-bit.
  DemandTracker tracker(spec.demand, n, spec.config.num_blocks, arrivals);
  {
    std::size_t next = 0;
    std::vector<const AsyncTransfer*> by_tick(ar.log.size());
    for (std::size_t i = 0; i < ar.log.size(); ++i) by_tick[i] = &ar.log[i];
    std::sort(by_tick.begin(), by_tick.end(),
              [](const AsyncTransfer* a, const AsyncTransfer* b) {
                return tick_of(a->finish) < tick_of(b->finish);
              });
    for (Tick t = 1; t <= last_tick; ++t) {
      while (next < by_tick.size() && tick_of(by_tick[next]->finish) == t) {
        tracker.on_delivery(by_tick[next]->transfer.to, by_tick[next]->transfer.block, t);
        ++next;
      }
      tracker.end_tick(t);
    }
  }
  RunResult mirror;
  tracker.finalize(last_tick, mirror);

  for (std::size_t i = 0; i < sr.startup_latency.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(sr.startup_latency[i]) !=
        std::bit_cast<std::uint64_t>(mirror.startup_latency[i])) {
      return reject(fail(("startup_latency[" + std::to_string(i) + "]").c_str(),
                         sr.startup_latency[i], mirror.startup_latency[i]));
    }
  }
  for (std::size_t i = 0; i < sr.rebuffer_ticks.size(); ++i) {
    if (sr.rebuffer_ticks[i] != mirror.rebuffer_ticks[i]) {
      return reject(fail(("rebuffer_ticks[" + std::to_string(i) + "]").c_str(),
                         static_cast<double>(sr.rebuffer_ticks[i]),
                         static_cast<double>(mirror.rebuffer_ticks[i])));
    }
  }
  if (sr.deadline_misses != mirror.deadline_misses) {
    return reject(fail("deadline_misses", static_cast<double>(sr.deadline_misses),
                       static_cast<double>(mirror.deadline_misses)));
  }
  if (sr.deadline_checks != mirror.deadline_checks) {
    return reject(fail("deadline_checks", static_cast<double>(sr.deadline_checks),
                       static_cast<double>(mirror.deadline_checks)));
  }
  if (sr.never_started != mirror.never_started) {
    return reject(fail("never_started", sr.never_started, mirror.never_started));
  }
  if (sr.rebuffered_clients != mirror.rebuffered_clients) {
    return reject(fail("rebuffered_clients", sr.rebuffered_clients,
                       mirror.rebuffered_clients));
  }
  return report;
}

}  // namespace pob::check
