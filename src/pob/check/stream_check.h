// Small-n validation of the stream layer against pob/async: run the hybrid
// tick+event StreamEngine with trace recording on, replay the recorded
// transfer stream through the continuous-time event engine (each tick-t
// transfer occupies its sender's upload port inside real time (t-1, t)),
// and require agreement on completion, per-client completion ticks, the
// per-tick delivery sets, and — recomputed independently from the async
// event log by the same DemandTracker fold — every streaming metric,
// bit-for-bit including the censored NaNs.

#pragma once

#include <string>

#include "pob/core/engine.h"
#include "pob/scale/stream/stream_engine.h"

namespace pob::check {

struct StreamMirrorReport {
  bool ok = true;
  /// First disagreement found (empty when ok).
  std::string diagnosis;
  /// The stream engine's result (trace recorded), whatever the verdict.
  RunResult scale;
};

/// Runs `spec` through scale::stream::StreamEngine on `jobs` workers and
/// mirrors it through pob/async. Intended for n up to a few thousand: the
/// async side re-simulates every transfer as an event and wakes all n nodes
/// per completion.
StreamMirrorReport stream_mirror_check(const scale::stream::StreamSpec& spec,
                                       unsigned jobs = 1);

}  // namespace pob::check
