// Time-expanded flow graphs over a swarm scenario: one node-copy per tick,
// upload/download-capacity port arcs, per-block source arcs encoding the
// server's release schedule, and (optionally) barter-coupling arcs for the
// strict mechanism. Feasibility of k units from the source to a client's
// copy at horizon T is a *necessary* condition for that client to hold all
// k blocks by tick T under any legal schedule — the soundness argument is
// in DESIGN.md §9 (distinct blocks reach a fixed sink along transfer-
// disjoint, time-respecting paths, so a legal schedule induces a feasible
// integral flow).
//
// The same capacity-port construction, restricted to a single tick, yields
// the per-tick feasibility predicate `tick_flow_feasible`: is a planned
// transfer set realizable under the per-node upload/download caps and the
// overlay adjacency? The differential oracle uses it as an independent
// (bipartite-matching-flavored) check on recorded traces.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pob/core/engine.h"
#include "pob/core/types.h"
#include "pob/flow/maxflow.h"
#include "pob/scale/topology.h"

namespace pob::flow {

/// Which mechanism family the certificate must hold against. Credit-limited
/// and cyclic-barter runs permit client seeding (credit covers a first
/// block), so they certify against the cooperative relaxation; only strict
/// barter admits the stronger coupling arcs and counting components.
enum class BarterModel : std::uint8_t { kCooperative, kStrictBarter };

/// Per-node capacities and the demand set, resolved from an EngineConfig
/// with the engine's precedence rules (per-node vectors beat scalars,
/// server_upload_capacity = 0 means "same as upload"). Departing clients
/// are excluded from demand — they need not complete — while their
/// capacities stay counted forever, which only over-estimates what any real
/// schedule has available and keeps every bound a lower bound.
struct CapacityShape {
  std::uint32_t n = 0;
  std::uint32_t k = 0;
  std::uint64_t server_up = 0;
  std::vector<std::uint64_t> up;    ///< effective upload cap per node
  std::vector<std::uint64_t> down;  ///< effective download cap per node
  std::vector<char> demand;         ///< [i] != 0: client i must complete
  std::uint32_t demand_clients = 0;

  static CapacityShape from_config(const EngineConfig& config);
};

struct TimeExpandedGraph {
  FlowNetwork net{0};
  std::uint32_t source = 0;
  std::uint32_t sink = 0;
  std::int64_t demand = 0;  ///< flow value required for feasibility (= k)
};

/// Arc count the unrolled graph would have — O(1), for budget gating before
/// committing to a build (complete topologies at mega-swarm n would unroll
/// to n^2 arcs per tick; callers skip the flow component instead).
std::uint64_t time_expanded_arc_count(const CapacityShape& shape,
                                      const scale::Topology& topology,
                                      Tick horizon, BarterModel model);

/// Unrolls the scenario to `horizon` ticks with `sink_client`'s final copy
/// as the sink. Upload arcs carry unit cost (so min_cost_max_flow over the
/// result reports the minimum transfer volume serving the sink); all other
/// arcs are free.
TimeExpandedGraph build_time_expanded(const CapacityShape& shape,
                                      const scale::Topology& topology,
                                      Tick horizon, NodeId sink_client,
                                      BarterModel model);

/// Can `sink_client` hold all k blocks by `horizon` under the relaxation?
/// False certifies that no legal schedule completes that client by then.
bool horizon_feasible(const CapacityShape& shape, const scale::Topology& topology,
                      Tick horizon, NodeId sink_client, BarterModel model);

/// The per-tick differential-oracle predicate: checks one tick's transfer
/// set against overlay adjacency and per-node capacities by solving the
/// induced bipartite flow (senders' upload ports -> receivers' download
/// ports) and requiring every transfer to route. Returns a diagnosis on
/// infeasibility, std::nullopt when the tick is realizable. Possession and
/// mechanism legality are the engines' job, not this predicate's.
std::optional<std::string> tick_flow_feasible(const CapacityShape& shape,
                                              const scale::Topology& topology,
                                              const std::vector<Transfer>& transfers);

}  // namespace pob::flow
