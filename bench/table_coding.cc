// E21 — the §4 network-coding baseline (Gkantsidis & Rodriguez [13]).
//
// Random linear coding over GF(2) vs the paper's block-based randomized
// algorithm (Random and Rarest-First), across overlay degrees. Coding's
// pitch is that it dissolves the block-selection problem — no rarest-block
// estimation, any innovative packet helps — at the cost of coefficient
// bookkeeping and occasional non-innovative packets (waste column).

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "pob/analysis/bounds.h"
#include "pob/coding/coded_swarm.h"

namespace pob::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Args args(argc, argv);
  TrialRunner trials(args);
  // GF(2) rank maintenance is O(k^2/64) per packet, so the default stays at
  // a scale where the full sweep takes tens of seconds; --n/--k scale it up.
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 300));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 300));
  const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 3));
  std::vector<std::int64_t> degrees = args.get_int_list("degrees", {4, 8, 16, 40});

  EngineConfig cfg;
  cfg.num_nodes = n;
  cfg.num_blocks = k;

  Table table({"degree", "coded T", "coded waste", "block Random T",
               "block Rarest T", "optimal"});
  for (const std::int64_t d64 : degrees) {
    const auto d = static_cast<std::uint32_t>(d64);

    double coded_t = 0, waste = 0;
    for (std::uint32_t i = 0; i < runs; ++i) {
      Rng grng(0xC0DE'0000 + 31ull * d + i);
      auto ov = std::make_shared<GraphOverlay>(make_random_regular(n, d, grng));
      const CodedSwarmResult r =
          run_coded_swarm(n, k, std::move(ov), {}, Rng(0xC0DE'1000 + 7ull * d + i));
      if (!r.completed) throw std::logic_error("coded swarm did not complete");
      coded_t += static_cast<double>(r.completion_tick);
      waste += r.waste_ratio();
    }

    const auto block_trial = [&](BlockPolicy policy, std::uint32_t i) {
      Rng grng(trial_seed(0xC0DE'2000 + 31ull * d, i));
      auto ov = std::make_shared<GraphOverlay>(make_random_regular(n, d, grng));
      RandomizedOptions opt;
      opt.policy = policy;
      return randomized_trial(cfg, std::move(ov), opt, trial_seed(0xC0DE'3000 + 7ull * d, i));
    };
    const TrialStats rnd = trials(
        runs, [&](std::uint32_t i) { return block_trial(BlockPolicy::kRandom, i); });
    const TrialStats rar = trials(runs, [&](std::uint32_t i) {
      return block_trial(BlockPolicy::kRarestFirst, i);
    });

    table.add_row({std::to_string(d), fmt(coded_t / runs, 1),
                   fmt(100.0 * waste / runs, 2) + "%",
                   fmt_ci(rnd.completion.mean, rnd.completion.ci95),
                   fmt_ci(rar.completion.mean, rar.completion.ci95),
                   std::to_string(cooperative_lower_bound(n, k))});
  }
  std::cout << "# E21/§4 [13]: GF(2) network coding vs block-based randomized "
               "(n = " << n << ", k = " << k << ", cooperative)\n";
  emit(args, table);
  trials.report(std::cout);
  return 0;
}

}  // namespace
}  // namespace pob::bench

int main(int argc, char** argv) { return pob::bench::main_impl(argc, argv); }
