// The mega-swarm engine: a structure-of-arrays reimplementation of the
// randomized cooperative protocol (§2.4) and its credit-limited barter
// variant (§3.2) designed for swarms of 10^6 nodes and beyond.
//
// Where core::Engine is general (any Scheduler, any Mechanism, machine-
// checked validation of every tick), scale::Engine fuses one protocol
// family into the engine itself and trades generality for density:
//
//   * possession is one contiguous arena of packed uint64 bitset rows
//     (n * ceil(k/64) words), not n separate BlockSet allocations;
//   * neighbor adjacency is CSR (scale::Topology), not a virtual Overlay;
//   * each tick runs in three phases — shard-parallel INTENT GENERATION on
//     the pob/exp ThreadPool, a deterministic seed-ordered MERGE, and a
//     serial APPLY — so the transfer stream and the final RunResult are
//     bit-identical at any --jobs value: intents are a pure function of
//     (seed, tick, node) via trial_seed-derived per-node RNG streams, and
//     the merge admits them in node order.
//
// The engine emits only legal transfers by construction; it is NOT trusted
// on its own. scale::MirrorScheduler replays the exact same plan/apply
// semantics through core::Engine and the pob/check reference oracle, and
// the scenario fuzzer cross-checks all three on overlapping n (see
// pob/check/scenario.h, EngineKind::kScale).

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pob/core/engine.h"
#include "pob/core/rng.h"
#include "pob/core/types.h"
#include "pob/mech/barter.h"
#include "pob/rand/randomized.h"
#include "pob/scale/topology.h"

namespace pob {
class ThreadPool;
}

namespace pob::scale {

struct ScaleOptions {
  /// Block selection within u \ v: uniform random or globally rarest first
  /// (§2.4 / §3.2.4's "perfect statistics").
  BlockPolicy policy = BlockPolicy::kRandom;

  /// Neighbor probes per upload slot before the node gives up for the tick.
  /// The practical handshake protocol: no exhaustive fallback scan — at
  /// n = 10^6 an O(degree) scan per idle node would dominate the tick.
  std::uint32_t max_probes = 16;

  /// 0 = cooperative (no constraint); >= 1 enables the §3.2 credit-limited
  /// barter predicate: client u uploads to client v only while the pairwise
  /// net (pre-tick ledger) stays below the limit. The emitted stream always
  /// satisfies CreditLimited::check_tick.
  std::uint32_t credit_limit = 0;

  /// Nodes per intent shard in the parallel generation phase. Shard count
  /// is a pure function of n (never of the job count), so chunk assignment
  /// cannot leak into results.
  std::uint32_t shard_nodes = 4096;
};

class Engine {
 public:
  /// `config` uses the same EngineConfig as core::Engine; record_trace,
  /// departures, depart_on_complete, heterogeneous capacities, max_ticks
  /// and stall detection all behave identically. `topology->num_nodes()`
  /// must equal config.num_nodes. `seed` plays the role a scheduler Rng
  /// plays for core runs: the full run is a pure function of
  /// (config, topology, options, seed).
  Engine(const EngineConfig& config, std::shared_ptr<const Topology> topology,
         ScaleOptions options, std::uint64_t seed);

  /// Runs to completion / tick cap / stall on `jobs` workers (0 = all
  /// cores, 1 = serial) and returns a RunResult with the exact same shape
  /// and semantics as core::Engine's — including dropped_transfers (always
  /// 0: the planner reads live state and never names a departed node) and
  /// active_slots_per_tick. Consumes the engine state; call once.
  RunResult run(unsigned jobs = 1);

  // --- Lockstep API ---------------------------------------------------
  // MirrorScheduler (and tests) drive the engine one tick at a time so the
  // identical transfer stream can be validated by core::Engine and the
  // reference oracle. plan() runs phases 1+2 against the current state;
  // apply() commits an accepted stream; deactivate() injects departures
  // (run() handles config.departures itself — lockstep callers own churn).

  /// Appends this tick's merged transfer stream to `out`. Serial; produces
  /// exactly what run() would commit on this tick at any job count.
  void plan(Tick tick, std::vector<Transfer>& out);

  /// Commits a planned stream: possession bits, replica counts, completion
  /// ticks, per-node upload totals, and the credit ledger.
  void apply(Tick tick, std::span<const Transfer> accepted);

  /// Removes a node (idempotent; the server cannot depart): its capacity
  /// leaves the active upload slots, its replicas stop counting, and it no
  /// longer needs to complete.
  void deactivate(NodeId node);

  bool is_active(NodeId node) const { return active_[node] != 0; }
  bool is_complete(NodeId node) const { return count_[node] >= k_; }
  bool all_complete() const { return num_incomplete_ == 0; }
  bool has(NodeId node, BlockId block) const {
    return (row(node)[block >> 6] >> (block & 63)) & 1u;
  }

  const EngineConfig& config() const { return cfg_; }
  const Topology& topology() const { return *topo_; }
  const ScaleOptions& options() const { return opt_; }

  /// Arena + index memory actually allocated, for bench reporting.
  std::uint64_t state_bytes() const;

 private:
  // A (receiver, block) admission table: open-addressed, epoch-stamped so a
  // tick reset is O(1) and a million inserts touch no allocator.
  class PairTable {
   public:
    void begin_tick(std::size_t expected);
    bool insert(std::uint64_t key);  ///< false if already present this tick

   private:
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint32_t> epochs_;
    std::uint64_t mask_ = 0;
    std::uint32_t epoch_ = 0;
  };

  std::uint64_t* row(NodeId node) {
    return bits_.data() + static_cast<std::size_t>(node) * stride_;
  }
  const std::uint64_t* row(NodeId node) const {
    return bits_.data() + static_cast<std::size_t>(node) * stride_;
  }

  void generate_node(std::uint64_t tick_base, NodeId u, std::vector<Transfer>& out);
  void plan_phases(Tick tick, std::vector<Transfer>& out, ThreadPool* pool);
  BlockId pick_block(NodeId u, NodeId v, Rng& rng) const;

  EngineConfig cfg_;
  std::shared_ptr<const Topology> topo_;
  ScaleOptions opt_;
  std::uint64_t seed_ = 0;

  std::uint32_t n_ = 0;
  std::uint32_t k_ = 0;
  std::uint32_t stride_ = 0;  // words per possession row

  // Structure-of-arrays swarm state.
  std::vector<std::uint64_t> bits_;       // n * stride possession arena
  std::vector<std::uint32_t> count_;      // blocks held per node
  std::vector<Tick> completion_;          // completion tick per node (0 = not)
  std::vector<std::uint8_t> active_;      // 0 once departed
  std::vector<std::uint32_t> freq_;       // per-block replica count (active nodes)
  std::vector<std::uint32_t> up_caps_;    // resolved per-node capacities
  std::vector<std::uint32_t> down_caps_;
  std::vector<Count> uploads_per_node_;
  std::uint32_t num_incomplete_ = 0;
  std::uint32_t num_departed_ = 0;
  std::uint64_t active_slots_ = 0;
  CreditLedger ledger_;  // §3.2 pairwise net-transfer ledger (credit mode)

  // Tick scratch (reused, never shrunk).
  std::vector<std::vector<Transfer>> shard_intents_;
  std::vector<std::uint32_t> down_used_;  // stamped by down_stamp_
  std::vector<Tick> down_stamp_;
  PairTable delivered_;
  std::vector<NodeId> leaving_;  // depart_on_complete queue (run() only)
  std::vector<Transfer> accepted_;

  bool consumed_ = false;  // run() called or lockstep driving began
};

}  // namespace pob::scale
