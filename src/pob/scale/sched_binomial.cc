#include "pob/scale/sched_binomial.h"

#include <algorithm>
#include <bit>

namespace pob::scale {

BinomialScheduler::BinomialScheduler(const Engine& engine, bool triangular)
    : engine_(engine),
      k_(engine.config().num_blocks),
      dims_(static_cast<std::uint32_t>(
          std::countr_zero(engine.config().num_nodes))),
      phase_len_(k_ + dims_ - 1),
      triangular_(triangular) {}

void BinomialScheduler::generate(Tick tick, std::uint32_t /*shard*/, NodeId first,
                                 NodeId last, std::vector<Transfer>& out) {
  if (tick > phase_len_) return;
  const std::uint32_t dim = (tick - 1) % dims_;
  const NodeId bit = NodeId{1} << dim;
  for (NodeId u = first; u < last; ++u) {
    const NodeId v = u ^ bit;
    if (v == kServer) continue;  // nothing flows into the server
    std::uint32_t rank;
    if (u == kServer) {
      rank = std::min<std::uint32_t>(tick, k_);
    } else {
      const BlockId top = engine_.top_block(u);
      rank = top == kNoBlock ? 0 : top + 1;
    }
    if (rank == 0) continue;
    const BlockId b = rank - 1;
    if (engine_.has(v, b)) continue;  // partner already caught up
    out.push_back(Transfer{u, v, b});
  }
}

}  // namespace pob::scale
