// Incentive mechanisms of §3, as machine-checkable constraints on each
// tick's simultaneous transfer set.
//
//   StrictBarter   (§3.1)  client->client transfers must come in simultaneous
//                          pairwise exchanges; only the server gives freely.
//   CreditLimited  (§3.2)  node u uploads to v only while the net blocks
//                          sent from u to v (minus those received back)
//                          stays <= s, the credit limit.
//   CyclicBarter   (§3.3)  transfers clear if they lie on a simultaneous
//                          directed barter cycle of length <= max_cycle_len
//                          (3 = the paper's "triangular barter"); transfers
//                          that do not clear cyclically fall back to the
//                          pairwise credit limit.
//
// The server is exempt everywhere: "the one exception to barter-based
// transfers is for the server itself, which uploads data without receiving
// anything in return" (§3.1). Transfers *to* the server are never legal.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>

#include "pob/core/mechanism.h"
#include "pob/core/types.h"

namespace pob {

/// Pairwise net-transfer ledger between clients. Positive net(u, v) means u
/// has sent more blocks to v than it received back.
class CreditLedger {
 public:
  /// Net blocks sent from `from` to `to` minus blocks received back.
  std::int64_t net(NodeId from, NodeId to) const;

  /// Records one block sent from `from` to `to`.
  void record(NodeId from, NodeId to);

  std::size_t num_pairs() const { return balance_.size(); }

  /// Estimated heap bytes held by the ledger: one hash node (key, value,
  /// next pointer) per pair plus the bucket array. Close enough for the
  /// state accounting benches report; the map's exact node layout is
  /// implementation-defined.
  std::uint64_t memory_bytes() const {
    return balance_.size() *
               (sizeof(std::uint64_t) + sizeof(std::int64_t) + sizeof(void*)) +
           balance_.bucket_count() * sizeof(void*);
  }

 private:
  static std::uint64_t key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  // Keyed on (min, max); value is net from min-id to max-id.
  std::unordered_map<std::uint64_t, std::int64_t> balance_;
};

/// §3.1 strict barter: within a tick, client->client transfers must form
/// simultaneous exchange pairs — for every transfer u->v there is a matching
/// v->u (counted with multiplicity).
class StrictBarter final : public Mechanism {
 public:
  std::string_view name() const override { return "strict-barter"; }
  std::optional<std::string> check_tick(Tick tick, std::span<const Transfer> transfers,
                                        const SwarmState& state) override;
};

/// §3.2 credit-limited barter with credit limit s >= 1: at the end of every
/// tick, net(u -> v) <= s must hold for every ordered client pair that
/// transferred this tick. Simultaneous reciprocal transfers within a tick
/// cancel, exactly like the symmetric exchanges of the hypercube algorithm.
class CreditLimited final : public Mechanism {
 public:
  explicit CreditLimited(std::uint32_t credit_limit);

  std::string_view name() const override { return "credit-limited"; }
  std::optional<std::string> check_tick(Tick tick, std::span<const Transfer> transfers,
                                        const SwarmState& state) override;
  void commit_tick(Tick tick, std::span<const Transfer> transfers,
                   const SwarmState& state) override;

  /// Conservative pre-check: guarantees a single u->v upload this tick stays
  /// within the limit regardless of what else happens (reciprocal transfers
  /// only help).
  bool may_upload(NodeId from, NodeId to) const override;

  std::uint32_t credit_limit() const { return credit_limit_; }
  const CreditLedger& ledger() const { return ledger_; }

 private:
  std::uint32_t credit_limit_;
  CreditLedger ledger_;
};

/// §3.3 cyclic ("triangular" at max_cycle_len = 3) barter with an optional
/// credit fallback: a transfer clears for free if it lies on a simultaneous
/// directed cycle of client transfers of length <= max_cycle_len (the barter
/// value returns around the cycle within the tick); transfers that do not
/// clear must respect the pairwise credit limit, like CreditLimited.
/// Cleared transfers do not touch the ledger.
class CyclicBarter final : public Mechanism {
 public:
  CyclicBarter(std::uint32_t max_cycle_len, std::uint32_t credit_limit);

  std::string_view name() const override { return "cyclic-barter"; }
  std::optional<std::string> check_tick(Tick tick, std::span<const Transfer> transfers,
                                        const SwarmState& state) override;
  void commit_tick(Tick tick, std::span<const Transfer> transfers,
                   const SwarmState& state) override;
  bool may_upload(NodeId from, NodeId to) const override;

  std::uint32_t max_cycle_len() const { return max_cycle_len_; }
  std::uint32_t credit_limit() const { return credit_limit_; }
  const CreditLedger& ledger() const { return ledger_; }

 private:
  /// Marks which of `transfers` lie on a directed client-transfer cycle of
  /// length <= max_cycle_len_. Returns an error for transfers to the server.
  std::optional<std::string> classify(std::span<const Transfer> transfers,
                                      std::vector<char>& cleared) const;

  std::uint32_t max_cycle_len_;
  std::uint32_t credit_limit_;
  CreditLedger ledger_;
};

/// Convenience: the paper's triangular barter with credit limit 1.
inline CyclicBarter make_triangular_barter(std::uint32_t credit_limit = 1) {
  return CyclicBarter(3, credit_limit);
}

}  // namespace pob
