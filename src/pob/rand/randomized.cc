#include "pob/rand/randomized.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace pob {

const char* to_string(BlockPolicy policy) {
  switch (policy) {
    case BlockPolicy::kRandom:
      return "random";
    case BlockPolicy::kRarestFirst:
      return "rarest-first";
  }
  return "?";
}

RandomizedScheduler::RandomizedScheduler(std::shared_ptr<const Overlay> overlay,
                                         RandomizedOptions options, Rng rng,
                                         const Mechanism* precheck)
    : overlay_(std::move(overlay)), opt_(options), rng_(rng), precheck_(precheck) {
  if (overlay_ == nullptr) throw std::invalid_argument("randomized: null overlay");
  if (opt_.upload_capacity < 1) throw std::invalid_argument("randomized: upload capacity");
  if (opt_.download_capacity < 1) throw std::invalid_argument("randomized: download capacity");
  const std::uint32_t n = overlay_->num_nodes();
  if (!opt_.upload_capacities.empty() && opt_.upload_capacities.size() != n) {
    throw std::invalid_argument("randomized: upload_capacities size mismatch");
  }
  if (!opt_.download_capacities.empty() && opt_.download_capacities.size() != n) {
    throw std::invalid_argument("randomized: download_capacities size mismatch");
  }
}

void RandomizedScheduler::set_overlay(std::shared_ptr<const Overlay> overlay) {
  if (overlay == nullptr) throw std::invalid_argument("randomized: null overlay");
  if (overlay->num_nodes() != overlay_->num_nodes()) {
    throw std::invalid_argument("randomized: overlay size changed");
  }
  overlay_ = std::move(overlay);
}

void RandomizedScheduler::ensure_scratch(const SwarmState& state) {
  const std::uint32_t n = state.num_nodes();
  if (order_.size() == n) return;
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), NodeId{0});
  dead_ = BlockSet(state.num_blocks());
  incoming_.assign(n, BlockSet(state.num_blocks()));
  incoming_stamp_.assign(n, 0);
  saturated_stamp_.assign(n, 0);
  down_used_.assign(n, 0);
  down_stamp_.assign(n, 0);
}

const BlockSet* RandomizedScheduler::incoming_of(NodeId v, Tick tick) const {
  return incoming_stamp_[v] == tick ? &incoming_[v] : nullptr;
}

bool RandomizedScheduler::acceptable(NodeId u, NodeId v, Tick tick,
                                     const SwarmState& state) const {
  if (v == u || v == kServer) return false;
  if (state.is_complete(v) || !state.is_active(v)) return false;
  if (saturated_stamp_[v] == tick) return false;  // all missing blocks inbound
  const std::uint32_t dcap = opt_.download_capacities.empty()
                                 ? opt_.download_capacity
                                 : opt_.download_capacities[v];
  if (down_stamp_[v] == tick && down_used_[v] >= dcap) return false;
  if (precheck_ != nullptr) {
    // may_upload consults the pre-tick ledger, so with multi-block upload
    // capacity a second same-pair upload this tick could overdraw the line;
    // keep at most one upload per (u, v) pair per tick under a mechanism.
    for (const NodeId c : chosen_) {
      if (c == v) return false;
    }
    if (!precheck_->may_upload(u, v)) return false;
  }
  return state.blocks_of(u).has_useful(state.blocks_of(v), incoming_of(v, tick));
}

NodeId RandomizedScheduler::find_target(NodeId u, Tick tick, const SwarmState& state) {
  const Overlay& ov = *overlay_;
  const std::uint32_t deg = ov.degree(u);
  if (deg == 0) return kNoNode;

  // Endgame shortcut: when far fewer nodes are incomplete than u has
  // neighbors, sample the incomplete list directly instead of burning
  // probes on complete neighbors.
  const auto incomplete = state.incomplete_nodes();
  const auto inc_count = static_cast<std::uint32_t>(incomplete.size());
  if (inc_count * 4 < deg) {
    for (std::uint32_t probe = 0; probe < opt_.max_probes; ++probe) {
      const NodeId v = incomplete[rng_.below(inc_count)];
      if (ov.adjacent(u, v) && acceptable(u, v, tick, state)) return v;
    }
  } else {
    // Rejection sampling: uniform over neighbors, conditioned on acceptance.
    for (std::uint32_t probe = 0; probe < opt_.max_probes; ++probe) {
      const NodeId v = ov.neighbor(u, rng_.below(deg));
      if (acceptable(u, v, tick, state)) return v;
    }
  }

  // Fallback: deterministic scan from a random offset, so u transmits
  // whenever ANY neighbor is interested (step 1 of §2.4.2). On dense
  // overlays only incomplete nodes can be interested, so scan those instead
  // of the full neighbor list — the endgame stays cheap.
  if (inc_count < deg) {
    if (inc_count == 0) return kNoNode;
    const std::uint32_t offset = rng_.below(inc_count);
    for (std::uint32_t i = 0; i < inc_count; ++i) {
      const NodeId v = incomplete[(offset + i) % inc_count];
      if (ov.adjacent(u, v) && acceptable(u, v, tick, state)) return v;
    }
    return kNoNode;
  }
  const std::uint32_t limit =
      opt_.max_scan == 0 ? deg : std::min(deg, opt_.max_scan);
  const std::uint32_t offset = rng_.below(deg);
  for (std::uint32_t i = 0; i < limit; ++i) {
    const NodeId v = ov.neighbor(u, (offset + i) % deg);
    if (acceptable(u, v, tick, state)) return v;
  }
  return kNoNode;
}

void RandomizedScheduler::plan_tick(Tick tick, const SwarmState& state,
                                    std::vector<Transfer>& out) {
  ensure_scratch(state);
  rng_.shuffle(order_);

  // Blocks held by every node are dead: nobody is interested in them. A
  // node holding only dead blocks (§2.4.3's stranded G_1 members) cannot
  // upload, and skipping it here avoids a fruitless O(n) fallback scan.
  dead_.clear();
  const auto freq = state.block_frequency();
  const std::uint32_t active = state.num_nodes() - state.num_departed();
  for (BlockId b = 0; b < state.num_blocks(); ++b) {
    if (freq[b] >= active) dead_.insert(b);
  }

  for (const NodeId u : order_) {
    if (!state.is_active(u)) continue;
    const BlockSet& have = state.blocks_of(u);
    if (have.empty()) continue;
    if (!have.has_block_missing_from(dead_)) continue;  // only dead blocks
    chosen_.clear();
    const std::uint32_t slots = opt_.upload_capacities.empty()
                                    ? opt_.upload_capacity
                                    : opt_.upload_capacities[u];
    for (std::uint32_t slot = 0; slot < slots; ++slot) {
      const NodeId v = find_target(u, tick, state);
      if (v == kNoNode) break;

      const BlockSet* excl = incoming_of(v, tick);
      BlockId b = kNoBlock;
      switch (opt_.policy) {
        case BlockPolicy::kRandom:
          b = have.pick_random_useful(state.blocks_of(v), excl, rng_);
          break;
        case BlockPolicy::kRarestFirst:
          b = have.pick_rarest_useful(state.blocks_of(v), excl,
                                      state.block_frequency(), rng_);
          break;
      }
      assert(b != kNoBlock);  // acceptable() guaranteed a useful block

      if (incoming_stamp_[v] != tick) {
        incoming_[v].clear();
        incoming_stamp_[v] = tick;
      }
      incoming_[v].insert(b);
      // Once everything v is missing is inbound, stop offering it blocks.
      if (incoming_[v].covers_complement_of(state.blocks_of(v))) {
        saturated_stamp_[v] = tick;
      }
      if (down_stamp_[v] != tick) {
        down_used_[v] = 0;
        down_stamp_[v] = tick;
      }
      ++down_used_[v];
      chosen_.push_back(v);
      out.push_back({u, v, b});
    }
  }
}

}  // namespace pob
