#include "pob/overlay/graph.h"

#include <gtest/gtest.h>

namespace pob {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle with a tail 2-3.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.finalize();
  return g;
}

TEST(Graph, BasicAccessors) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  const auto nb = g.neighbors(2);
  EXPECT_EQ(std::vector<NodeId>(nb.begin(), nb.end()), (std::vector<NodeId>{0, 1, 3}));
}

TEST(Graph, DegreeStats) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(Graph, ConnectivityAndEccentricity) {
  const Graph g = triangle_plus_tail();
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.eccentricity(0), 2u);
  EXPECT_EQ(g.eccentricity(2), 1u);

  Graph disconnected(4);
  disconnected.add_edge(0, 1);
  disconnected.add_edge(2, 3);
  disconnected.finalize();
  EXPECT_FALSE(disconnected.is_connected());
  EXPECT_EQ(disconnected.eccentricity(0), Graph::kUnreachable);
}

TEST(Graph, RejectsSelfLoopsAndBadIds) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdgesAtFinalize) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // same undirected edge
  EXPECT_THROW(g.finalize(), std::invalid_argument);
}

TEST(Graph, AddAfterFinalizeIsAnError) {
  Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_THROW(g.add_edge(1, 2), std::logic_error);
}

TEST(Graph, FinalizeIsIdempotent) {
  Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  g.finalize();
  EXPECT_EQ(g.num_edges(), 1u);
}

}  // namespace
}  // namespace pob
