#include <algorithm>
#include <stdexcept>

#include "pob/mech/barter.h"

namespace pob {

std::int64_t CreditLedger::net(NodeId from, NodeId to) const {
  const bool flip = from > to;
  const auto it = balance_.find(flip ? key(to, from) : key(from, to));
  if (it == balance_.end()) return 0;
  return flip ? -it->second : it->second;
}

void CreditLedger::record(NodeId from, NodeId to) {
  if (from < to) {
    balance_[key(from, to)] += 1;
  } else {
    balance_[key(to, from)] -= 1;
  }
}

}  // namespace pob
